open Hsis_bdd
open Hsis_mv
open Hsis_blifmv
open Hsis_fsm
open Hsis_auto
open Hsis_check

type step = { state : (int * int) list; others : (int * int) list }
type t = { prefix : step list; cycle : step list; verified : bool }

(* ------------------------------------------------------------------ *)
(* Concrete states *)

let pick_state trans set =
  if Bdd.is_false set then raise Not_found;
  let sym = Trans.sym trans in
  let man = Trans.man trans in
  let assignment = Bdd.pick_state set ~over:(Sym.state_bit_vars sym) in
  Bdd.conj man
    (List.map
       (fun (v, b) ->
         let lit = Bdd.ithvar man v in
         if b then lit else Bdd.dnot lit)
       assignment)

let env_of_point point =
  let cube = Bdd.pick_cube point in
  fun v -> match List.assoc_opt v cube with Some b -> b | None -> false

let decode_state trans point =
  let sym = Trans.sym trans in
  Sym.state_of_assignment sym (env_of_point point)

(* Values of non-state signals on the transition pres -> next. *)
let solve_others trans ~pres ~next =
  let sym = Trans.sym trans in
  let net = Sym.net sym in
  let next_cube = Bdd.permute (Sym.pres_to_next sym) next in
  let sol = Trans.solve_step trans ~pres ~next:next_cube in
  if Bdd.is_false sol then []
  else begin
    let env = env_of_point sol in
    List.filter_map
      (fun s ->
        if Sym.is_state sym s then None
        else
          match Enc.decode (Sym.pres sym s) env with
          | v -> Some (s, v)
          | exception Invalid_argument _ -> None)
      (List.init (Net.num_signals net) Fun.id)
  end

(* ------------------------------------------------------------------ *)
(* Shortest paths *)

let bfs_path trans ~within ~src ~dst =
  if not (Bdd.is_false (Bdd.dand src dst)) then [ src ]
  else begin
    (* forward rings from src within the region *)
    let rec forward rings frontier reached =
      if Bdd.is_false frontier then raise Not_found
      else if not (Bdd.is_false (Bdd.dand frontier dst)) then List.rev rings
      else begin
        let next =
          Bdd.dand (Bdd.dand (Trans.image trans frontier) within)
            (Bdd.dnot reached)
        in
        forward (next :: rings) next (Bdd.dor reached next)
      end
    in
    let rings = forward [ src ] src src in
    (* rings are now src-first; the last intersects dst *)
    let rings = Array.of_list rings in
    let k = Array.length rings - 1 in
    let target = pick_state trans (Bdd.dand rings.(k) dst) in
    let rec backward j acc current =
      if j < 0 then acc
      else begin
        let prev =
          pick_state trans
            (Bdd.dand rings.(j) (Trans.preimage trans current))
        in
        backward (j - 1) (prev :: acc) prev
      end
    in
    backward (k - 1) [ target ] target
  end

(* ------------------------------------------------------------------ *)
(* Fair cycles *)

(* Forward/backward reachable sets in at least one step, within a region. *)
let forward_within trans ~within s =
  let rec go reached frontier =
    if Bdd.is_false frontier then reached
    else begin
      let next =
        Bdd.dand (Bdd.dand (Trans.image trans frontier) within)
          (Bdd.dnot reached)
      in
      go (Bdd.dor reached next) next
    end
  in
  let first = Bdd.dand (Trans.image trans s) within in
  go first first

let backward_within trans ~within s =
  let rec go reached frontier =
    if Bdd.is_false frontier then reached
    else begin
      let next =
        Bdd.dand (Bdd.dand (Trans.preimage trans frontier) within)
          (Bdd.dnot reached)
      in
      go (Bdd.dor reached next) next
    end
  in
  let first = Bdd.dand (Trans.preimage trans s) within in
  go first first

(* Every constraint has a witness inside the candidate cycle region. *)
let witnesses_ok env scc =
  let nonempty b = not (Bdd.is_false b) in
  List.for_all
    (fun c ->
      match c with
      | Fair.CInf_state p -> nonempty (Bdd.dand scc p)
      | Fair.CInf_edge e -> nonempty (Bdd.dand scc (El.pre_edge env ~edge:e scc))
      | Fair.CStreett (p, q) ->
          let q_ok =
            match q with
            | Fair.CState qs -> nonempty (Bdd.dand scc qs)
            | Fair.CEdge qe ->
                nonempty (Bdd.dand scc (El.pre_edge env ~edge:qe scc))
          in
          let p_absent =
            match p with
            | Fair.CState ps -> Bdd.is_false (Bdd.dand scc ps)
            | Fair.CEdge pe ->
                Bdd.is_false (Bdd.dand scc (El.pre_edge env ~edge:pe scc))
          in
          q_ok || p_absent)
    (El.constraints env)

(* States that directly witness some constraint — the fair cycle must pass
   through them, so they make good anchors. *)
let witness_states env ~within =
  let trans = El.trans_of env in
  List.fold_left
    (fun acc c ->
      match c with
      | Fair.CInf_state p -> Bdd.dor acc p
      | Fair.CInf_edge e -> Bdd.dor acc (El.pre_edge env ~edge:e within)
      | Fair.CStreett (_, Fair.CState qs) -> Bdd.dor acc qs
      | Fair.CStreett (_, Fair.CEdge qe) ->
          Bdd.dor acc (El.pre_edge env ~edge:qe within))
    (Bdd.dfalse (Trans.man trans))
    (El.constraints env)

(* The cycle region through a candidate anchor, when the anchor can reach
   itself within the hull. *)
let scc_of env trans ~fair c =
  let fwd = forward_within trans ~within:fair c in
  if Bdd.is_false (Bdd.dand c fwd) then None
  else begin
    let scc = Bdd.dor c (Bdd.dand fwd (backward_within trans ~within:fair c)) in
    if witnesses_ok env scc then Some scc else None
  end

(* Scan the reachability onion rings earliest-first for a witness state on
   a fair cycle: this keeps the prefix minimal (paper Sec. 6.1). *)
let ring_scan env trans ~fair rings =
  let witnessy = witness_states env ~within:fair in
  let max_rings = min (Array.length rings) 24 in
  let rec scan k =
    if k >= max_rings then None
    else begin
      let rec tries cand n =
        if n = 0 || Bdd.is_false cand then None
        else begin
          let c = pick_state trans cand in
          match scc_of env trans ~fair c with
          | Some scc -> Some (c, scc)
          | None -> tries (Bdd.dand cand (Bdd.dnot c)) (n - 1)
        end
      in
      match tries (Bdd.dand (Bdd.dand rings.(k) fair) witnessy) 3 with
      | Some r -> Some r
      | None -> scan (k + 1)
    end
  in
  scan 0

(* Find a concrete state lying on a fair cycle, together with the
   strongly-connected region the cycle can be built in.  Starting from a
   hull state, walk into ever-deeper fair sub-hulls until the state can
   reach itself and all constraint witnesses are available locally. *)
let locate_cycle env trans ~fair start =
  let rec go s depth =
    let fwd = forward_within trans ~within:fair s in
    let on_cycle = not (Bdd.is_false (Bdd.dand s fwd)) in
    if on_cycle then begin
      let scc =
        Bdd.dor s (Bdd.dand fwd (backward_within trans ~within:fair s))
      in
      if witnesses_ok env scc || depth >= 32 then (s, scc)
      else descend s fwd depth
    end
    else descend s fwd depth
  and descend s fwd depth =
    if depth >= 32 then (s, fair)
    else begin
      let inner = El.fair_states env ~within:fwd in
      (* move strictly deeper in the SCC dag: exclude anything that can
         still reach s (else the walk could oscillate on prefix states) *)
      let back = backward_within trans ~within:fair s in
      let candidates = Bdd.dand inner (Bdd.dnot (Bdd.dor back s)) in
      if Bdd.is_false candidates then (s, fair)
      else begin
        (* prefer candidates that themselves witness a constraint: they
           sit on or next to the fair cycle, keeping the prefix short *)
        let witnessy =
          List.fold_left
            (fun acc c ->
              match c with
              | Fair.CInf_state p -> Bdd.dor acc p
              | Fair.CInf_edge e ->
                  Bdd.dor acc (El.pre_edge env ~edge:e inner)
              | Fair.CStreett (_, Fair.CState qs) -> Bdd.dor acc qs
              | Fair.CStreett (_, Fair.CEdge qe) ->
                  Bdd.dor acc (El.pre_edge env ~edge:qe inner))
            (Bdd.dfalse (Trans.man trans))
            (El.constraints env)
        in
        let preferred = Bdd.dand candidates witnessy in
        let next_s =
          if Bdd.is_false preferred then pick_state trans candidates
          else pick_state trans preferred
        in
        go next_s (depth + 1)
      end
    end
  in
  go start 0

(* Shrink a candidate cycle region until every Streett constraint is
   locally satisfiable.  A state can be fair (a fair path leaves from it)
   without lying on any fair cycle: when (p, q) has no q-witness inside the
   region, a cycle there must avoid p entirely — so remove the p-states,
   and for edge conditions restrict the transition structure to the non-p
   edges — then recompute the fair hull of what is left.  Returns the
   environment to build the cycle in (its structure carries the edge
   restrictions) along with the refined region.  Iterates because removals
   can starve another constraint's witnesses. *)
let refine_streett env ~fair =
  let rec go env_cur region iter =
    if Bdd.is_false region || iter >= 8 then (env_cur, region)
    else begin
      let trans = El.trans_of env_cur in
      let q_ok = function
        | Fair.CState qs -> not (Bdd.is_false (Bdd.dand region qs))
        | Fair.CEdge qe ->
            not
              (Bdd.is_false
                 (Bdd.dand region (El.pre_edge env_cur ~edge:qe region)))
      in
      let removed, avoided =
        List.fold_left
          (fun ((rs, es) as acc) c ->
            match c with
            | Fair.CStreett (p, q) when not (q_ok q) -> begin
                match p with
                | Fair.CState ps ->
                    let hit = Bdd.dand region ps in
                    if Bdd.is_false hit then acc else (Bdd.dor rs hit, es)
                | Fair.CEdge pe ->
                    (* restrict only when a p-edge is live in the region *)
                    if
                      Bdd.is_false
                        (Bdd.dand region (El.pre_edge env_cur ~edge:pe region))
                    then acc
                    else (rs, pe :: es)
              end
            | Fair.CStreett _ | Fair.CInf_state _ | Fair.CInf_edge _ -> acc)
          (Bdd.dfalse (Trans.man trans), [])
          (El.constraints env_cur)
      in
      if Bdd.is_false removed && avoided = [] then (env_cur, region)
      else begin
        let env' =
          if avoided = [] then env_cur
          else
            El.prepare
              (List.fold_left
                 (fun t pe -> Trans.transition_constraint t (Bdd.dnot pe))
                 trans avoided)
              (El.constraints env_cur)
        in
        go env'
          (El.fair_states env' ~within:(Bdd.dand region (Bdd.dnot removed)))
          (iter + 1)
      end
    end
  in
  let env', region = go env fair 0 in
  (* An empty refinement would contradict a non-empty exact hull; fall back
     to the unrefined one rather than fail. *)
  if Bdd.is_false region then (env, fair) else (env', region)

let edge_step env trans ~fair ~edge cur =
  let sym = Trans.sym trans in
  ignore env;
  let e_cur =
    Bdd.exists ~cube:(Sym.state_cube sym) (Bdd.dand edge cur)
  in
  let to_pres = Bdd.permute (Sym.next_to_pres sym) e_cur in
  let candidates = Bdd.dand (Bdd.dand to_pres (Trans.image trans cur)) fair in
  pick_state trans candidates

(* Build a cycle through [start] inside the fair hull, visiting a witness
   of every constraint. *)
let build_cycle env trans ~fair start =
  let cs = El.constraints env in
  let path = ref [ start ] in
  let cur = ref start in
  let extend_to target =
    match bfs_path trans ~within:fair ~src:!cur ~dst:target with
    | [ _ ] -> () (* already there *)
    | _ :: rest ->
        path := List.rev_append rest !path;
        cur := List.nth rest (List.length rest - 1)
    | [] -> ()
  in
  List.iter
    (fun c ->
      match c with
      | Fair.CInf_state p ->
          if
            Bdd.is_false (Bdd.dand !cur p)
            && not (Bdd.is_false (Bdd.dand p fair))
          then extend_to (Bdd.dand p fair)
      | Fair.CInf_edge e ->
          (* reach a source of the fair edge, then take it *)
          let sources = Bdd.dand fair (El.pre_edge env ~edge:e fair) in
          if not (Bdd.is_false sources) then begin
            extend_to sources;
            match edge_step env trans ~fair ~edge:e !cur with
            | next ->
                path := next :: !path;
                cur := next
            | exception Not_found -> ()
          end
      | Fair.CStreett (_, q) -> (
          (* heuristic: route through a q-witness when one exists in the
             hull; otherwise rely on the hull avoiding p (verified later) *)
          match q with
          | Fair.CState qs ->
              if
                (not (Bdd.is_false (Bdd.dand qs fair)))
                && Bdd.is_false (Bdd.dand !cur qs)
              then extend_to (Bdd.dand qs fair)
          | Fair.CEdge qe ->
              let sources = Bdd.dand fair (El.pre_edge env ~edge:qe fair) in
              if not (Bdd.is_false sources) then begin
                extend_to sources;
                match edge_step env trans ~fair ~edge:qe !cur with
                | next ->
                    path := next :: !path;
                    cur := next
                | exception Not_found -> ()
              end))
    cs;
  (* Ensure the cycle has at least one transition: if no constraint moved
     us, hop to any fair successor first. *)
  if Bdd.equal !cur start && List.length !path = 1 then begin
    let succ = pick_state trans (Bdd.dand (Trans.image trans start) fair) in
    path := succ :: !path;
    cur := succ
  end;
  (* close the loop back to the start; drop the repeated start state *)
  (match bfs_path trans ~within:fair ~src:!cur ~dst:start with
  | _ :: rest when rest <> [] ->
      let rest = List.filteri (fun i _ -> i < List.length rest - 1) rest in
      path := List.rev_append rest !path
  | _ -> ());
  (* the witness walk may itself have returned to the start: the wrap to
     the head is implicit, so a trailing copy would fake a self-loop *)
  (match !path with
  | last :: (_ :: _ as rest) when Bdd.equal last start -> path := rest
  | _ -> ());
  List.rev !path

(* ------------------------------------------------------------------ *)
(* Verification and minimization *)

let has_transition trans a b =
  let sym = Trans.sym trans in
  let next = Bdd.permute (Sym.pres_to_next sym) b in
  not (Bdd.is_false (Trans.solve_step trans ~pres:a ~next))

let cycle_pairs cycle =
  match cycle with
  | [] -> []
  | first :: _ ->
      let rec go = function
        | [ last ] -> [ (last, first) ]
        | a :: (b :: _ as rest) -> (a, b) :: go rest
        | [] -> []
      in
      go cycle

let verify_cycle env trans cycle =
  let sym = Trans.sym trans in
  let pairs = cycle_pairs cycle in
  let edge_bdd (a, b) = Bdd.dand a (Bdd.permute (Sym.pres_to_next sym) b) in
  List.for_all (fun (a, b) -> has_transition trans a b) pairs
  && List.for_all
       (fun c ->
         let state_hit p =
           List.exists (fun s -> not (Bdd.is_false (Bdd.dand s p))) cycle
         in
         let edge_hit e =
           List.exists
             (fun pr -> not (Bdd.is_false (Bdd.dand (edge_bdd pr) e)))
             pairs
         in
         match c with
         | Fair.CInf_state p -> state_hit p
         | Fair.CInf_edge e -> edge_hit e
         | Fair.CStreett (p, q) ->
             let q_hit =
               match q with Fair.CState qs -> state_hit qs | Fair.CEdge qe -> edge_hit qe
             in
             let p_avoided =
               match p with
               | Fair.CState ps -> not (state_hit ps)
               | Fair.CEdge pe ->
                   (* each step must be realizable off the p-edges — an
                      edge intersecting pe may still have a non-p labeling *)
                   let t_notp =
                     Trans.transition_constraint trans (Bdd.dnot pe)
                   in
                   List.for_all (fun (a, b) -> has_transition t_notp a b) pairs
             in
             q_hit || p_avoided)
       (El.constraints env)

(* One shortcut pass: splice out segments when a direct transition skips
   them and fairness still verifies (cycle minimization is NP-hard; this is
   the paper's "heuristically minimized"). *)
let minimize_cycle env trans cycle =
  let arr = Array.of_list cycle in
  let n = Array.length arr in
  (* a self-loop on the anchor is the ideal cycle; other states cannot be
     used alone, since the prefix connects to the head *)
  let singleton =
    match cycle with
    | head :: _ :: _
      when has_transition trans head head && verify_cycle env trans [ head ] ->
        Some head
    | _ -> None
  in
  match singleton with
  | Some s -> [ s ]
  | None ->
  if n <= 2 then cycle
  else begin
    let best = ref cycle in
    let try_splice i j =
      (* keep 0..i, then j..n-1 *)
      let candidate =
        List.filteri (fun k _ -> k <= i || k >= j) (Array.to_list arr |> List.mapi (fun k s -> (k, s)))
        |> List.map snd
      in
      if
        List.length candidate >= 1
        && List.length candidate < List.length !best
        && has_transition trans arr.(i) arr.(j)
        && verify_cycle env trans candidate
      then best := candidate
    in
    for i = 0 to n - 2 do
      for j = n - 1 downto i + 2 do
        try_splice i j
      done
    done;
    !best
  end

(* ------------------------------------------------------------------ *)
(* Assembly *)

let steps_of trans states ~closing =
  let rec go = function
    | [] -> []
    | [ last ] ->
        let others =
          match closing with
          | Some first -> solve_others trans ~pres:last ~next:first
          | None -> []
        in
        [ { state = decode_state trans last; others } ]
    | a :: (b :: _ as rest) ->
        { state = decode_state trans a; others = solve_others trans ~pres:a ~next:b }
        :: go rest
  in
  go states

(* [ptrans] is the full structure the prefix was found in; [ctrans] is the
   (possibly Streett-restricted) structure the cycle lives in, so cycle
   labels are solved off the avoided edges. *)
let assemble env ~ptrans ~ctrans prefix_states cycle_states =
  let cycle_states = minimize_cycle env ctrans cycle_states in
  let verified = verify_cycle env ctrans cycle_states in
  (* the prefix's last step transitions into the cycle head *)
  let prefix_states, cycle_head =
    match cycle_states with
    | head :: _ -> (prefix_states, head)
    | [] -> (prefix_states, Bdd.dfalse (Trans.man ptrans))
  in
  let prefix =
    match List.rev prefix_states with
    | [] -> []
    | _last :: _ ->
        let rec go = function
          | [] -> []
          | [ last ] ->
              [
                {
                  state = decode_state ptrans last;
                  others = solve_others ptrans ~pres:last ~next:cycle_head;
                };
              ]
          | a :: (b :: _ as rest) ->
              {
                state = decode_state ptrans a;
                others = solve_others ptrans ~pres:a ~next:b;
              }
              :: go rest
        in
        go prefix_states
  in
  let cycle =
    match cycle_states with
    | [] -> []
    | first :: _ -> steps_of ctrans cycle_states ~closing:(Some first)
  in
  { prefix; cycle; verified }

let fair_lasso env ~reach ~fair =
  if Bdd.is_false fair then raise Not_found;
  let ptrans = El.trans_of env in
  let env, fair = refine_streett env ~fair in
  let trans = El.trans_of env in
  let rings = reach.Reach.rings in
  (* shortest prefix candidate: first ring intersecting the fair hull *)
  let k0 =
    let rec find i =
      if i >= Array.length rings then raise Not_found
      else if not (Bdd.is_false (Bdd.dand rings.(i) fair)) then i
      else find (i + 1)
    in
    find 0
  in
  let anchor, region =
    match ring_scan env trans ~fair rings with
    | Some r -> r
    | None ->
        let start0 = pick_state trans (Bdd.dand rings.(k0) fair) in
        locate_cycle env trans ~fair start0
  in
  (* minimum-length prefix to the anchor (it sits in exactly one ring) *)
  let k =
    let rec find i =
      if i >= Array.length rings then raise Not_found
      else if not (Bdd.is_false (Bdd.dand rings.(i) anchor)) then i
      else find (i + 1)
    in
    find 0
  in
  let rec backward j acc current =
    if j < 0 then acc
    else begin
      let prev =
        pick_state ptrans (Bdd.dand rings.(j) (Trans.preimage ptrans current))
      in
      backward (j - 1) (prev :: acc) prev
    end
  in
  let prefix_states = backward (k - 1) [] anchor in
  let cycle_states = build_cycle env trans ~fair:region anchor in
  assemble env ~ptrans ~ctrans:trans prefix_states cycle_states

let lasso_from env ~within start =
  let ptrans = El.trans_of env in
  let fair = El.fair_states env ~within in
  if Bdd.is_false fair then raise Not_found;
  let env, fair = refine_streett env ~fair in
  let trans = El.trans_of env in
  let path = bfs_path ptrans ~within ~src:start ~dst:fair in
  let entry = List.nth path (List.length path - 1) in
  let head =
    List.filteri (fun i _ -> i < List.length path - 1) path
  in
  let anchor, region = locate_cycle env trans ~fair entry in
  let walk = bfs_path trans ~within:fair ~src:entry ~dst:anchor in
  let walk_head =
    List.filteri (fun i _ -> i < List.length walk - 1) walk
  in
  let prefix_states = head @ walk_head in
  let cycle_states = build_cycle env trans ~fair:region anchor in
  assemble env ~ptrans ~ctrans:trans prefix_states cycle_states

let total_length t = List.length t.prefix + List.length t.cycle

(* ------------------------------------------------------------------ *)
(* Concrete replay *)

(* Re-execute the lasso on the explicit-state simulator: every step must be
   realizable as one of the enabled non-deterministic options of the
   concrete network, and the last cycle step must close back on the cycle
   head.  This validates the whole symbolic pipeline the trace came from
   (relation construction, image, solve_step, decoding) against the
   independent row-enumeration semantics of [Enum]. *)
let replay trans t =
  let sym = Trans.sym trans in
  let net = Sym.net sym in
  let latches = net.Net.latches in
  let exception Bad_trace in
  let state_arr pairs =
    Array.of_list
      (List.map
         (fun (l : Net.flatch) ->
           match List.assoc_opt l.Net.fl_output pairs with
           | Some v -> v
           | None -> raise Bad_trace)
         latches)
  in
  match t.cycle with
  | [] -> false
  | head :: _ -> (
      try
        let steps = t.prefix @ t.cycle in
        let states = List.map (fun s -> state_arr s.state) steps in
        let head_state = state_arr head.state in
        (* Each step's target is the next state in the walk; the final
           cycle step wraps back to the cycle head. *)
        let rec targets = function
          | [] -> []
          | [ _ ] -> [ head_state ]
          | _ :: (s' :: _ as rest) -> s' :: targets rest
        in
        let tgts = targets states in
        let first = List.hd states in
        let init_idx =
          let rec find i = function
            | [] -> raise Bad_trace
            | st :: rest -> if st = first then i else find (i + 1) rest
          in
          find 0 (Enum.initial_states net)
        in
        let sim = Hsis_sim.Simulator.create ~init_choice:init_idx net in
        List.for_all2
          (fun (step : step) target ->
            (* Prefer an option consistent with the decoded transition
               labels; fall back to any option reaching the target state
               (labels can be under-determined by the picked cube). *)
            Hsis_sim.Simulator.step_matching sim (fun v next ->
                next = target
                && List.for_all (fun (s, value) -> v.(s) = value) step.others)
            || Hsis_sim.Simulator.step_matching sim (fun _ next -> next = target))
          steps tgts
      with Bad_trace -> false)

(* ------------------------------------------------------------------ *)
(* Printing *)

(* Elaboration temporaries and next-state shadows are noise in a trace. *)
let display_worthy name =
  let temp =
    String.length name >= 2
    && name.[0] = '_'
    && name.[1] = 'e'
    && String.for_all
         (fun c -> c >= '0' && c <= '9')
         (String.sub name 2 (String.length name - 2))
  in
  let next_shadow =
    String.length name > 5
    && String.sub name (String.length name - 5) 5 = "_next"
  in
  (not temp) && not next_shadow

let pp_step trans fmt (i, tag, { state; others }) =
  let sym = Trans.sym trans in
  let net = Sym.net sym in
  let show (s, v) =
    Printf.sprintf "%s=%s"
      (Net.signal net s).Net.s_name
      (Domain.value (Net.dom net s) v)
  in
  let visible =
    List.filter (fun (s, _) -> display_worthy (Net.signal net s).Net.s_name)
      others
  in
  Format.fprintf fmt "%s%3d: %s" tag i
    (String.concat " " (List.map show state));
  if visible <> [] then
    Format.fprintf fmt "   [%s]" (String.concat " " (List.map show visible))

let pp trans fmt t =
  Format.fprintf fmt "prefix (%d states):@." (List.length t.prefix);
  List.iteri
    (fun i s -> Format.fprintf fmt "  %a@." (pp_step trans) (i, " ", s))
    t.prefix;
  Format.fprintf fmt "cycle (%d states)%s:@." (List.length t.cycle)
    (if t.verified then "" else " [unverified]");
  List.iteri
    (fun i s -> Format.fprintf fmt "  %a@." (pp_step trans) (i, "*", s))
    t.cycle
