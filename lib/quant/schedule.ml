module IS = Set.Make (Int)

type t =
  | Leaf of { rel : int; q : int list }
  | Join of { left : t; right : t; q : int list }

type problem = { supports : int list array; quantify : int list }

(* Active item during scheduling: a partial tree and its remaining support
   (support minus everything already quantified inside it). *)
type item = { tree : t; supp : IS.t }

(* Prepend the (small) new batch rather than appending to the accumulated
   list: consumers treat [q] as a set (it is sorted or turned into a cube),
   and appending made repeated add_q calls quadratic in the total count. *)
let add_q tree q =
  if q = [] then tree
  else
    match tree with
    | Leaf l -> Leaf { l with q = q @ l.q }
    | Join j -> Join { j with q = q @ j.q }

let leaf_items problem =
  Array.to_list
    (Array.mapi
       (fun i supp -> { tree = Leaf { rel = i; q = [] }; supp = IS.of_list supp })
       problem.supports)

(* Variables quantifiable once the given items are merged: quantify
   candidates whose every occurrence lies inside the merged cluster. *)
let locally_quantifiable qset merged_supp others =
  IS.filter
    (fun v ->
      IS.mem v merged_supp
      && List.for_all (fun it -> not (IS.mem v it.supp)) others)
    qset

(* Merge a list of items into one, joining smallest-support first and
   quantifying [q] at the final join. *)
let merge_items items q =
  match List.sort (fun a b -> compare (IS.cardinal a.supp) (IS.cardinal b.supp)) items with
  | [] -> invalid_arg "Schedule.merge_items: empty cluster"
  | first :: rest ->
      let merged =
        List.fold_left
          (fun acc it ->
            {
              tree = Join { left = acc.tree; right = it.tree; q = [] };
              supp = IS.union acc.supp it.supp;
            })
          first rest
      in
      let qlist = IS.elements q in
      { tree = add_q merged.tree qlist; supp = IS.diff merged.supp q }

let finish items qset =
  (* Join the leftovers (smallest first), quantifying stragglers at root. *)
  match items with
  | [] -> Leaf { rel = 0; q = [] } (* unreachable for non-empty problems *)
  | items ->
      let merged = merge_items items qset in
      merged.tree

(* Bucket-elimination scheduling with occurrence indexing: items live in a
   growable array (dead after merging); [occ] maps each variable to the
   item ids mentioning it (stale ids filtered on read); per-variable costs
   are cached and recomputed only when a touching cluster merges. *)
let min_width problem =
  let n = Array.length problem.supports in
  if n = 0 then invalid_arg "Schedule.min_width: no relations";
  let items = ref (Array.of_list (leaf_items problem)) in
  let alive = ref (Array.make n true) in
  let count = ref n in
  let capacity = ref n in
  let add_item it =
    if !count >= !capacity then begin
      let cap = max 8 (2 * !capacity) in
      let bigger_items = Array.make cap it in
      Array.blit !items 0 bigger_items 0 !count;
      let bigger_alive = Array.make cap false in
      Array.blit !alive 0 bigger_alive 0 !count;
      items := bigger_items;
      alive := bigger_alive;
      capacity := cap
    end;
    let id = !count in
    !items.(id) <- it;
    !alive.(id) <- true;
    count := id + 1;
    id
  in
  let occ : (int, int list) Hashtbl.t = Hashtbl.create 256 in
  let note_occ id supp =
    IS.iter
      (fun v ->
        Hashtbl.replace occ v (id :: Option.value ~default:[] (Hashtbl.find_opt occ v)))
      supp
  in
  Array.iteri (fun id it -> note_occ id it.supp) !items;
  let live_occ v =
    let ids =
      List.filter (fun id -> !alive.(id) && IS.mem v !items.(id).supp)
        (Option.value ~default:[] (Hashtbl.find_opt occ v))
    in
    let ids = List.sort_uniq compare ids in
    Hashtbl.replace occ v ids;
    ids
  in
  let appearing =
    Array.fold_left (fun acc s -> IS.union acc (IS.of_list s)) IS.empty
      problem.supports
  in
  let qset = ref (IS.inter (IS.of_list problem.quantify) appearing) in
  let cost_cache : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let cost v =
    match Hashtbl.find_opt cost_cache v with
    | Some c -> c
    | None ->
        let union =
          List.fold_left
            (fun acc id -> IS.union acc !items.(id).supp)
            IS.empty (live_occ v)
        in
        let c = IS.cardinal union in
        Hashtbl.replace cost_cache v c;
        c
  in
  while not (IS.is_empty !qset) do
    let v =
      IS.fold
        (fun v best ->
          match best with
          | None -> Some (v, cost v)
          | Some (_, c) ->
              let cv = cost v in
              if cv < c then Some (v, cv) else best)
        !qset None
      |> Option.get |> fst
    in
    let cluster_ids = live_occ v in
    let cluster = List.map (fun id -> !items.(id)) cluster_ids in
    let merged_supp =
      List.fold_left (fun acc it -> IS.union acc it.supp) IS.empty cluster
    in
    (* quantify every candidate local to the cluster *)
    let q =
      IS.filter
        (fun u ->
          u = v
          || (IS.mem u merged_supp
             && List.for_all (fun id -> List.mem id cluster_ids) (live_occ u)))
        (IS.add v !qset)
    in
    let merged = merge_items cluster q in
    List.iter (fun id -> !alive.(id) <- false) cluster_ids;
    let new_id = add_item merged in
    note_occ new_id merged.supp;
    qset := IS.diff !qset q;
    (* costs touching the merged support are stale *)
    IS.iter (fun u -> Hashtbl.remove cost_cache u) merged_supp
  done;
  let leftovers =
    List.filteri (fun id _ -> !alive.(id)) (Array.to_list (Array.sub !items 0 !count))
  in
  finish leftovers IS.empty

let pair_clustering problem =
  if Array.length problem.supports = 0 then
    invalid_arg "Schedule.pair_clustering: no relations";
  let appearing =
    Array.fold_left (fun acc s -> IS.union acc (IS.of_list s)) IS.empty
      problem.supports
  in
  let qset = ref (IS.inter (IS.of_list problem.quantify) appearing) in
  let items = ref (Array.of_list (leaf_items problem)) in
  (* First, quantify variables local to a single relation. *)
  items :=
    Array.map
      (fun it ->
        let others =
          Array.to_list !items |> List.filter (fun o -> o != it)
        in
        let q = locally_quantifiable !qset it.supp others in
        qset := IS.diff !qset q;
        { tree = add_q it.tree (IS.elements q); supp = IS.diff it.supp q })
      !items;
  let arr = ref (Array.to_list !items) in
  let rec loop () =
    match !arr with
    | [] -> invalid_arg "Schedule.pair_clustering: empty"
    | [ last ] -> add_q last.tree (IS.elements !qset)
    | items ->
        (* Find the pair with the smallest union support. *)
        let best = ref None in
        List.iteri
          (fun i a ->
            List.iteri
              (fun j b ->
                if j > i then begin
                  let c = IS.cardinal (IS.union a.supp b.supp) in
                  match !best with
                  | Some (_, _, c') when c' <= c -> ()
                  | _ -> best := Some (a, b, c)
                end)
              items)
          items;
        let a, b, _ = Option.get !best in
        let rest = List.filter (fun it -> it != a && it != b) items in
        let supp = IS.union a.supp b.supp in
        let q = locally_quantifiable !qset supp rest in
        qset := IS.diff !qset q;
        let merged =
          {
            tree = Join { left = a.tree; right = b.tree; q = IS.elements q };
            supp = IS.diff supp q;
          }
        in
        arr := merged :: rest;
        loop ()
  in
  loop ()

let naive problem =
  if Array.length problem.supports = 0 then
    invalid_arg "Schedule.naive: no relations";
  let appearing =
    Array.fold_left (fun acc s -> IS.union acc (IS.of_list s)) IS.empty
      problem.supports
  in
  let q = IS.elements (IS.inter (IS.of_list problem.quantify) appearing) in
  let n = Array.length problem.supports in
  let rec fold acc i =
    if i >= n then acc
    else fold (Join { left = acc; right = Leaf { rel = i; q = [] }; q = [] }) (i + 1)
  in
  add_q (fold (Leaf { rel = 0; q = [] }) 1) q

let rec quantified_vars = function
  | Leaf { q; _ } -> q
  | Join { left; right; q } ->
      q @ quantified_vars left @ quantified_vars right

let quantified_vars t = List.sort compare (quantified_vars t)

let rec rels_used = function
  | Leaf { rel; _ } -> [ rel ]
  | Join { left; right; _ } -> rels_used left @ rels_used right

let rels_used t = List.sort compare (rels_used t)

let validate problem t =
  let n = Array.length problem.supports in
  let rels = rels_used t in
  if rels <> List.init n Fun.id then Error "relations not used exactly once"
  else begin
    let appearing =
      Array.fold_left (fun acc s -> IS.union acc (IS.of_list s)) IS.empty
        problem.supports
    in
    let expected =
      IS.elements (IS.inter (IS.of_list problem.quantify) appearing)
    in
    let got = quantified_vars t in
    if got <> expected then Error "quantified variable set mismatch"
    else begin
      (* Early-quantification soundness: a variable quantified at a node must
         not occur in any relation outside that node's subtree. *)
      let rec subtree_rels = function
        | Leaf { rel; _ } -> IS.singleton rel
        | Join { left; right; _ } ->
            IS.union (subtree_rels left) (subtree_rels right)
      in
      let ok = ref true in
      let rec walk node =
        let inside = subtree_rels node in
        let q = match node with Leaf { q; _ } -> q | Join { q; _ } -> q in
        List.iter
          (fun v ->
            for i = 0 to n - 1 do
              if (not (IS.mem i inside)) && List.mem v problem.supports.(i)
              then ok := false
            done)
          q;
        match node with
        | Leaf _ -> ()
        | Join { left; right; _ } ->
            walk left;
            walk right
      in
      walk t;
      if !ok then Ok () else Error "variable quantified before last use"
    end
  end

let max_cluster_support problem t =
  let rec go = function
    | Leaf { rel; q } ->
        let supp = IS.diff (IS.of_list problem.supports.(rel)) (IS.of_list q) in
        (supp, IS.cardinal supp)
    | Join { left; right; q } ->
        let sl, ml = go left and sr, mr = go right in
        let united = IS.union sl sr in
        let peak = max (IS.cardinal united) (max ml mr) in
        let supp = IS.diff united (IS.of_list q) in
        (supp, peak)
  in
  snd (go t)

let rec pp fmt = function
  | Leaf { rel; q } ->
      if q = [] then Format.fprintf fmt "r%d" rel
      else
        Format.fprintf fmt "(E%s . r%d)"
          (String.concat "," (List.map string_of_int q))
          rel
  | Join { left; right; q } ->
      if q = [] then Format.fprintf fmt "(%a * %a)" pp left pp right
      else
        Format.fprintf fmt "(E%s . %a * %a)"
          (String.concat "," (List.map string_of_int q))
          pp left pp right
