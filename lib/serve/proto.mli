open Hsis_obs
open Hsis_limits

(** The serve-mode wire protocol (schema ["hsis-serve/1"]).

    One JSON document per line in each direction: clients write requests,
    the daemon writes exactly one response per request line — including
    for lines it could not parse, which come back as in-band [status =
    "error"] responses rather than killing the connection.

    Request grammar (members beyond [op] optional unless noted):
    {v
    {"id": <any json, echoed back>,
     "op": "check" | "reach" | "fuzz" | "stats" | "ping" | "shutdown",
     "design": {"verilog": "<source>"}        -- check/reach: required
             | {"blifmv": "<source>"}
             | {"builtin": "<table-1 name>"},
     "pif": "<pif text>",                     -- check: property set
                                                 (builtins default to theirs)
     "budget": {"timeout_s": f, "max_nodes": n, "max_steps": n},
     "jobs": n, "tr": "mono" | "part" | "iso",
     "fail_fast": b, "witnesses": b,
     "stats": b,                              -- attach an obs snapshot
     "fuzz": {"iters": n, "seed": n, "state_limit": n, "ctl_per_iter": n}}
    v}

    Responses always carry ["schema"], the echoed ["id"], ["op"],
    ["status"] (["ok"] / ["error"]), the CLI-equivalent ["exit_code"]
    (0 pass / 3 fail / 4 inconclusive; 2 for protocol errors),
    ["elapsed_s"], and a ["cache"] member describing the session-cache
    interaction (hit/miss, session id, entry counters).  [status = "ok"]
    adds the op-specific ["result"]; [status = "error"] adds ["error"]
    with a ["kind"] (["parse"] / ["request"] / ["job"]) and ["message"]. *)

val schema_version : string
(** ["hsis-serve/1"]. *)

type budget = {
  timeout_s : float option;  (** per-job, relative seconds *)
  max_nodes : int option;
  max_steps : int option;
}

val no_budget : budget

val budget_is_none : budget -> bool

val limits_of_budget : budget -> Limits.t
(** Arm the budget now: the deadline becomes absolute at this call. *)

type design_src =
  | Verilog of string
  | Blifmv of string
  | Builtin of string  (** resolved against the Table-1 model registry *)

type fuzz_spec = {
  f_iters : int;
  f_seed : int;
  f_state_limit : int;
  f_ctl_per_iter : int;
}

type op =
  | Check
  | Reach
  | Fuzz of fuzz_spec
  | Stats  (** session-cache and daemon counters *)
  | Ping
  | Shutdown

val op_name : op -> string

type request = {
  r_id : Obs.Json.t;  (** echoed verbatim; [Null] when absent *)
  r_op : op;
  r_design : design_src option;
  r_pif : string option;
  r_budget : budget;
  r_jobs : int option;
  r_kernel_jobs : int option;
      (** per-job intra-operation parallelism override for the design
          manager's apply kernels (wire member ["kernel_jobs"], additive
          to hsis-serve/1; must be >= 1).  [None] leaves the session's
          resident degree. *)
  r_tr : Hsis_fsm.Trans.strategy option;
      (** per-job transition-relation strategy override; [None] leaves the
          daemon default (configured at startup, [part] out of the box).
          Named on the wire as ["mono"] / ["part"] / ["iso"]. *)
  r_fail_fast : bool;
  r_witnesses : bool;
  r_stats : bool;
}

exception Bad_request of string
(** Structurally valid JSON that is not a valid request (unknown op,
    wrong member type, ...). *)

val request_of_json : Obs.Json.t -> request
(** Raises {!Bad_request}. *)

val parse_request : string -> request
(** One line -> request.  Raises {!Bad_request} (also wrapping JSON
    parse errors, so callers have a single failure path). *)

val request_to_json : request -> Obs.Json.t
(** Inverse of {!request_of_json} (round-trips through it). *)

type error_kind = Parse_error | Request_error | Job_error

val error_kind_name : error_kind -> string

type response = {
  p_id : Obs.Json.t;
  p_op : string;
  p_status : [ `Ok | `Error of error_kind * string ];
  p_exit_code : int;
  p_elapsed : float;
  p_cache : Obs.Json.t;  (** session-cache interaction record *)
  p_result : Obs.Json.t option;  (** op-specific payload when [`Ok] *)
  p_obs : Obs.snapshot option;  (** when the request asked for stats *)
}

val response_to_json : response -> Obs.Json.t
val response_of_json : Obs.Json.t -> response
(** Client-side decoding (used by tests and the bench harness); [p_obs]
    round-trips through [Obs.of_json]. *)

val print_response : response -> string
(** One line, no trailing newline. *)
