open Hsis_obs
open Hsis_limits
open Hsis_core
open Hsis_fsm
open Hsis_models

type config = {
  cache_entries : int;
  cache_nodes : int;
  default_budget : Proto.budget;
  default_jobs : int;
  heuristic : Trans.heuristic;
  tr : Trans.strategy;
}

let default_config =
  {
    cache_entries = 8;
    cache_nodes = 2_000_000;
    default_budget = Proto.no_budget;
    default_jobs = 1;
    heuristic = Trans.Min_width;
    tr = Trans.Partitioned;
  }

type t = {
  config : config;
  scache : Scache.t;
  lock : Mutex.t;
  started : float;
  mutable served : int;
  mutable errors : int;
  mutable stop : bool;
  mutable listener : Unix.file_descr option;
}

let create ?(config = default_config) () =
  {
    config;
    scache =
      Scache.create ~max_entries:config.cache_entries
        ~max_live_nodes:config.cache_nodes ();
    lock = Mutex.create ();
    started = Obs.Clock.now ();
    served = 0;
    errors = 0;
    stop = false;
    listener = None;
  }

let cache t = t.scache
let jobs_served t = t.served
let stopping t = t.stop

let stats_json t =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.Str Proto.schema_version);
      ("uptime_s", Obs.Json.Float (Obs.Clock.now () -. t.started));
      ("jobs_served", Obs.Json.Int t.served);
      ("errors", Obs.Json.Int t.errors);
      ("cache", Scache.to_json t.scache);
    ]

(* A builtin design resolves to its Verilog source — so a ["builtin"]
   request and a ["verilog"] request carrying the same text share one
   cached session — plus its bundled PIF property set as the default. *)
let resolve_design = function
  | Proto.Verilog s -> (Hsis.Session.Verilog s, None)
  | Proto.Blifmv s -> (Hsis.Session.Blifmv s, None)
  | Proto.Builtin name -> (
      match Models.by_name name with
      | Some m -> (Hsis.Session.Verilog m.Model.verilog, Some m.Model.pif)
      | None ->
          raise (Proto.Bad_request ("unknown builtin design \"" ^ name ^ "\"")))

let required_design req =
  match req.Proto.r_design with
  | Some d -> resolve_design d
  | None ->
      raise
        (Proto.Bad_request
           (Printf.sprintf "op %S needs a \"design\""
              (Proto.op_name req.Proto.r_op)))

let job_budget t req =
  if Proto.budget_is_none req.Proto.r_budget then t.config.default_budget
  else req.Proto.r_budget

let job_jobs t req =
  Option.value req.Proto.r_jobs ~default:t.config.default_jobs

let cache_member t interaction =
  let s = Scache.stats t.scache in
  Obs.Json.Obj
    (List.concat
       [
         (match interaction with
         | Some (hit, session) ->
             [
               ("hit", Obs.Json.Bool hit);
               ("session", Obs.Json.Str (Hsis.Session.id session));
               ("session_hits", Obs.Json.Int (Hsis.Session.hits session));
             ]
         | None -> []);
         [
           ("entries", Obs.Json.Int s.Scache.entries);
           ("live_nodes", Obs.Json.Int s.Scache.live_nodes);
           ("snapshot_bytes", Obs.Json.Int s.Scache.snapshot_bytes);
           ("hits", Obs.Json.Int s.Scache.hits);
           ("misses", Obs.Json.Int s.Scache.misses);
           ("evictions", Obs.Json.Int s.Scache.evictions);
         ];
       ])

(* Op handlers: each returns (result, exit_code, obs, cache interaction). *)

let do_check t req =
  let source, builtin_pif = required_design req in
  let pif_text =
    match (req.Proto.r_pif, builtin_pif) with
    | Some p, _ -> p
    | None, Some p -> p
    | None, None ->
        raise (Proto.Bad_request "op \"check\" needs a \"pif\" property set")
  in
  let pif = Hsis_auto.Pif.parse pif_text in
  let session, hit =
    Scache.find_or_open t.scache ~heuristic:t.config.heuristic
      ~tr:t.config.tr source
  in
  let limits = Proto.limits_of_budget (job_budget t req) in
  let report, snap =
    Hsis.Session.run ~witnesses:req.Proto.r_witnesses
      ~fail_fast:req.Proto.r_fail_fast ~jobs:(job_jobs t req) ~limits
      ?tr:req.Proto.r_tr ?kernel_jobs:req.Proto.r_kernel_jobs session pif
  in
  Scache.enforce ~keep:session t.scache;
  let obs =
    if req.Proto.r_stats then
      Some
        (match snap with
        | Some s -> s
        | None -> Hsis.snapshot (Hsis.Session.design session))
    else None
  in
  (Hsis.report_to_json report, Hsis.report_exit_code report, obs,
   Some (hit, session))

let do_reach t req =
  let source, _ = required_design req in
  let session, hit =
    Scache.find_or_open t.scache ~heuristic:t.config.heuristic
      ~tr:t.config.tr source
  in
  let design = Hsis.Session.design session in
  let limits = Proto.limits_of_budget (job_budget t req) in
  (* Per-job TR / kernel_jobs overrides: flip the evaluation path and the
     manager's parallelism degree for this job only. *)
  let resident = Trans.strategy design.Hsis.trans in
  let resident_kj = Hsis.kernel_jobs design in
  (match req.Proto.r_tr with
  | Some s -> Trans.set_strategy design.Hsis.trans s
  | None -> ());
  (match req.Proto.r_kernel_jobs with
  | Some n -> Hsis.set_kernel_jobs design n
  | None -> ());
  let r =
    Fun.protect
      ~finally:(fun () ->
        Trans.set_strategy design.Hsis.trans resident;
        Hsis.set_kernel_jobs design resident_kj)
      (fun () -> Hsis.reachable ~limits design)
  in
  Scache.enforce ~keep:session t.scache;
  let verdict_members =
    match Verdict.to_json r.Hsis_check.Reach.verdict with
    | Obs.Json.Obj ms -> ms
    | j -> [ ("verdict", j) ]
  in
  let result =
    Obs.Json.Obj
      (verdict_members
      @ [
          ( "reached_states",
            Obs.Json.Float
              (Hsis_check.Reach.count_states design.Hsis.trans
                 r.Hsis_check.Reach.reachable) );
          ("bfs_steps", Obs.Json.Int r.Hsis_check.Reach.steps);
        ])
  in
  let obs = if req.Proto.r_stats then Some (Hsis.snapshot design) else None in
  (result, Verdict.exit_code r.Hsis_check.Reach.verdict, obs,
   Some (hit, session))

let do_fuzz t req (f : Proto.fuzz_spec) =
  let open Hsis_gen in
  let cfg =
    {
      Diff.default_config with
      Diff.iters = f.Proto.f_iters;
      seed = f.Proto.f_seed;
      state_limit = f.Proto.f_state_limit;
      ctl_per_iter = f.Proto.f_ctl_per_iter;
      jobs = job_jobs t req;
      log = None;
      out_dir = None;
    }
  in
  let report = Diff.run cfg in
  ( Diff.report_to_json report,
    (if report.Diff.discrepancies = [] then 0 else 3),
    None,
    None )

let handle_request t req =
  let finish ~elapsed status result exit_code obs interaction =
    {
      Proto.p_id = req.Proto.r_id;
      p_op = Proto.op_name req.Proto.r_op;
      p_status = status;
      p_exit_code = exit_code;
      p_elapsed = elapsed;
      p_cache = cache_member t interaction;
      p_result = result;
      p_obs = obs;
    }
  in
  let outcome, elapsed =
    Obs.Clock.wall (fun () ->
        match
          match req.Proto.r_op with
          | Proto.Check -> do_check t req
          | Proto.Reach -> do_reach t req
          | Proto.Fuzz f -> do_fuzz t req f
          | Proto.Ping ->
              (Obs.Json.Obj [ ("pong", Obs.Json.Bool true) ], 0, None, None)
          | Proto.Stats -> (stats_json t, 0, None, None)
          | Proto.Shutdown ->
              (Obs.Json.Obj [ ("stopping", Obs.Json.Bool true) ], 0, None,
               None)
        with
        | result, exit_code, obs, interaction ->
            `Ok (result, exit_code, obs, interaction)
        | exception Proto.Bad_request m -> `Err (Proto.Request_error, m)
        | exception (Failure m | Invalid_argument m | Sys_error m) ->
            `Err (Proto.Job_error, m)
        | exception Hsis_auto.Pif.Error m ->
            `Err (Proto.Job_error, "pif: " ^ m)
        | exception exn -> `Err (Proto.Job_error, Printexc.to_string exn))
  in
  t.served <- t.served + 1;
  match outcome with
  | `Ok (result, exit_code, obs, interaction) ->
      finish ~elapsed `Ok (Some result) exit_code obs interaction
  | `Err (kind, message) ->
      t.errors <- t.errors + 1;
      finish ~elapsed (`Error (kind, message)) None 2 None None

let is_blank line = String.trim line = ""

let handle_line t line =
  if is_blank line then (None, `Continue)
  else begin
    Mutex.lock t.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.lock)
      (fun () ->
        let error ~id kind message =
          t.served <- t.served + 1;
          t.errors <- t.errors + 1;
          {
            Proto.p_id = id;
            p_op = "";
            p_status = `Error (kind, message);
            p_exit_code = 2;
            p_elapsed = 0.0;
            p_cache = cache_member t None;
            p_result = None;
            p_obs = None;
          }
        in
        match Obs.Json.parse line with
        | exception Obs.Json.Parse_error m ->
            (Some (error ~id:Obs.Json.Null Proto.Parse_error
                     ("invalid JSON: " ^ m)),
             `Continue)
        | j -> (
            let id =
              match Obs.Json.member "id" j with
              | Some v -> v
              | None -> Obs.Json.Null
            in
            match Proto.request_of_json j with
            | exception Proto.Bad_request m ->
                (Some (error ~id Proto.Request_error m), `Continue)
            | req ->
                let resp = handle_request t req in
                let stop =
                  match req.Proto.r_op with
                  | Proto.Shutdown ->
                      t.stop <- true;
                      `Stop
                  | _ -> `Continue
                in
                (Some resp, stop)))
  end

let write_response oc resp =
  output_string oc (Proto.print_response resp);
  output_char oc '\n';
  flush oc

let run_channels t ic oc =
  let continue = ref true in
  while !continue do
    match input_line ic with
    | exception End_of_file -> continue := false
    | line -> (
        let resp, stop = handle_line t line in
        (try Option.iter (write_response oc) resp
         with Sys_error _ -> continue := false);
        match stop with `Stop -> continue := false | `Continue -> ())
  done

(* Unix-socket mode: accept until shutdown, one thread per client.  The
   dispatch lock inside [handle_line] serializes job execution, so client
   threads only race on their own channels. *)

let close_listener t =
  match t.listener with
  | Some fd ->
      t.listener <- None;
      (try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ()

let client_thread t cfd =
  let ic = Unix.in_channel_of_descr cfd in
  let oc = Unix.out_channel_of_descr cfd in
  (try
     let continue = ref true in
     while !continue do
       match input_line ic with
       | exception End_of_file -> continue := false
       | line -> (
           let resp, stop = handle_line t line in
           (try Option.iter (write_response oc) resp
            with Sys_error _ -> continue := false);
           match stop with `Stop -> continue := false | `Continue -> ())
     done
   with Sys_error _ -> ());
  try Unix.close cfd with Unix.Unix_error _ -> ()

let listen t ~socket_path =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind fd (Unix.ADDR_UNIX socket_path);
     Unix.listen fd 16
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  t.listener <- Some fd;
  let clients = ref [] in
  (* Poll with a short select timeout rather than blocking in accept:
     closing the listener from another thread does not interrupt a
     blocked accept(2) on Linux, so a shutdown request would otherwise
     leave the daemon wedged until the next connection. *)
  (try
     while not t.stop do
       match Unix.select [ fd ] [] [] 0.2 with
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
       | [], _, _ -> ()
       | _ ->
           let cfd, _ = Unix.accept fd in
           clients := Thread.create (client_thread t) cfd :: !clients
     done
   with Unix.Unix_error _ | Sys_error _ -> ());
  close_listener t;
  List.iter Thread.join !clients;
  try Unix.unlink socket_path with Unix.Unix_error _ -> ()
