open Hsis_obs
open Hsis_core
open Hsis_fsm

(** The warm-state session cache of the serve daemon.

    Keys are [Hsis.Session.hash] content hashes of the design source
    (plus the ordering heuristic and the construction-time TR strategy,
    so the same text read under two heuristics or strategies yields two
    sessions); values are open {!Hsis.Session}s
    holding the parsed/flattened network, the relation BDDs with their
    quantification schedule, the manager's variable order and any
    conclusive reach set — everything a re-check of an edited property
    skips rebuilding.

    Eviction is LRU under a two-sided budget in the style of [Limits]:
    a maximum entry count and a maximum total footprint across all cached
    sessions, counted in node-equivalents — live BDD nodes plus any
    cached shared-work snapshot ([Hsis.Session.snapshot_bytes]) at the
    wire rate of 32 bytes per node record.  A session's footprint grows
    as jobs run, so the budget is re-enforced after every job, not only
    on insert.  Evicted sessions are closed.  Hit/miss/eviction totals and per-entry hit
    counters are kept as [Obs.Tally]-style counters and surfaced through
    {!to_json} (the ["cache"] member of serve responses and of [hsis
    serve --stats-json] output). *)

type t

val create : ?max_entries:int -> ?max_live_nodes:int -> unit -> t
(** Defaults: 8 entries, 2_000_000 live nodes.  Both clamped to >= 1
    entry so the working design always fits. *)

val find_or_open :
  t ->
  heuristic:Trans.heuristic ->
  tr:Trans.strategy ->
  Hsis.Session.source ->
  Hsis.Session.t * bool
(** The session for this source — reused warm when cached ([true]), read
    cold and inserted otherwise ([false]).  [tr] is the construction-time
    TR strategy ([Hsis.Session.open_ ~tr]); per-job evaluation overrides
    go through [Session.run ~tr] instead and do not fork cache entries.
    Insertion enforces the budget (never evicting the session being
    returned). *)

val enforce : ?keep:Hsis.Session.t -> t -> unit
(** Re-apply the budget (LRU eviction) — called after each served job,
    since running jobs grows the cached managers.  [keep] is exempt. *)

type stats = {
  entries : int;
  live_nodes : int;  (** total across cached sessions, as of last probe *)
  snapshot_bytes : int;
      (** total cached shared-work snapshot bytes across sessions; counted
          against the node budget at 32 bytes per node-equivalent *)
  hits : int;
  misses : int;
  evictions : int;
}

val stats : t -> stats

val entry_hits : t -> (string * int) list
(** Per-entry hit counters, keyed by short (8-hex-char) session id; evicted
    entries keep their counts (the key is the design, not the slot). *)

val ids : t -> string list
(** Cached session ids, most recently used first. *)

val clear : t -> unit
(** Close and drop every session (counters are kept). *)

val to_json : t -> Obs.Json.t
(** [{"entries", "live_nodes", "snapshot_bytes", "max_entries",
    "max_live_nodes", "hits", "misses", "evictions", "per_entry": {...},
    "sessions": [...]}]. *)
