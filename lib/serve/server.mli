open Hsis_obs
open Hsis_fsm

(** The warm-state verification daemon behind [hsis serve].

    One server owns a {!Scache} of open design sessions and answers
    {!Proto} requests — over stdin/stdout ({!run_channels}) or a Unix
    socket with one thread per client ({!listen}).  Job execution is
    serialized by an internal lock (a job may itself fan out over the
    [Par] domain pool via its ["jobs"] member), so concurrent clients
    interleave at line granularity and the session cache needs no finer
    locking.

    The daemon never dies on bad input: unparseable lines, invalid
    requests and job-level failures are all answered with in-band
    [status = "error"] responses (see {!Proto}), and the next line is
    served normally. *)

type config = {
  cache_entries : int;  (** session-cache entry budget *)
  cache_nodes : int;  (** session-cache total live-BDD-node budget *)
  default_budget : Proto.budget;
      (** per-job resource budget applied when a request carries none
          (the [--timeout] / [--max-nodes] / [--max-steps] CLI flags) *)
  default_jobs : int;  (** [Par] fan-out for requests without ["jobs"] *)
  heuristic : Trans.heuristic;
  tr : Trans.strategy;
      (** construction-time TR strategy of sessions this daemon opens;
          requests override per job with the ["tr"] member *)
}

val default_config : config
(** 8 entries, 2M nodes, no budget, 1 job, min-width, partitioned TR. *)

type t

val create : ?config:config -> unit -> t

val cache : t -> Scache.t
val jobs_served : t -> int
val stopping : t -> bool

val stats_json : t -> Obs.Json.t
(** Daemon counters: uptime, jobs served, error count, and the session
    cache's {!Scache.to_json} — the payload of the ["stats"] op and of
    [hsis serve --stats-json]. *)

val handle_request : t -> Proto.request -> Proto.response
(** Execute one already-parsed request (no locking — single-client use,
    e.g. tests). *)

val handle_line : t -> string -> Proto.response option * [ `Continue | `Stop ]
(** One request line -> at most one response line, taking the dispatch
    lock.  [None] for blank lines (no response owed).  [`Stop] after a
    ["shutdown"] request — the caller should answer, then wind down.
    Never raises: all errors are folded into the response. *)

val run_channels : t -> in_channel -> out_channel -> unit
(** Serve line-by-line until EOF or shutdown; responses are flushed after
    every line. *)

val listen : t -> socket_path:string -> unit
(** Bind a Unix-domain stream socket (replacing any stale file), accept
    clients until a ["shutdown"] request arrives, one thread per client,
    then remove the socket file.  Blocks the calling thread. *)
