open Hsis_obs
open Hsis_limits

let schema_version = "hsis-serve/1"

type budget = {
  timeout_s : float option;
  max_nodes : int option;
  max_steps : int option;
}

let no_budget = { timeout_s = None; max_nodes = None; max_steps = None }

let budget_is_none b =
  b.timeout_s = None && b.max_nodes = None && b.max_steps = None

let limits_of_budget b =
  if budget_is_none b then Limits.none
  else
    Limits.make ?timeout:b.timeout_s ?max_nodes:b.max_nodes
      ?max_steps:b.max_steps ()

type design_src = Verilog of string | Blifmv of string | Builtin of string

type fuzz_spec = {
  f_iters : int;
  f_seed : int;
  f_state_limit : int;
  f_ctl_per_iter : int;
}

type op = Check | Reach | Fuzz of fuzz_spec | Stats | Ping | Shutdown

let op_name = function
  | Check -> "check"
  | Reach -> "reach"
  | Fuzz _ -> "fuzz"
  | Stats -> "stats"
  | Ping -> "ping"
  | Shutdown -> "shutdown"

type request = {
  r_id : Obs.Json.t;
  r_op : op;
  r_design : design_src option;
  r_pif : string option;
  r_budget : budget;
  r_jobs : int option;
  r_kernel_jobs : int option;
  r_tr : Hsis_fsm.Trans.strategy option;
  r_fail_fast : bool;
  r_witnesses : bool;
  r_stats : bool;
}

exception Bad_request of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad_request m)) fmt

(* Typed member accessors that distinguish "absent" from "wrong type":
   a member that is present with the wrong type is a protocol error, not
   a silent default. *)

let mem name j = Obs.Json.member name j

let opt_str name j =
  match mem name j with
  | None | Some Obs.Json.Null -> None
  | Some (Obs.Json.Str s) -> Some s
  | Some _ -> bad "member %S must be a string" name

let opt_int name j =
  match mem name j with
  | None | Some Obs.Json.Null -> None
  | Some (Obs.Json.Int n) -> Some n
  | Some _ -> bad "member %S must be an integer" name

let opt_float name j =
  match mem name j with
  | None | Some Obs.Json.Null -> None
  | Some (Obs.Json.Float f) -> Some f
  | Some (Obs.Json.Int n) -> Some (float_of_int n)
  | Some _ -> bad "member %S must be a number" name

let opt_bool ?(default = false) name j =
  match mem name j with
  | None | Some Obs.Json.Null -> default
  | Some (Obs.Json.Bool b) -> b
  | Some _ -> bad "member %S must be a boolean" name

let design_of_json j =
  match (opt_str "verilog" j, opt_str "blifmv" j, opt_str "builtin" j) with
  | Some s, None, None -> Verilog s
  | None, Some s, None -> Blifmv s
  | None, None, Some n -> Builtin n
  | None, None, None ->
      bad "design needs one of \"verilog\", \"blifmv\", \"builtin\""
  | _ -> bad "design takes exactly one of \"verilog\", \"blifmv\", \"builtin\""

let design_to_json = function
  | Verilog s -> Obs.Json.Obj [ ("verilog", Obs.Json.Str s) ]
  | Blifmv s -> Obs.Json.Obj [ ("blifmv", Obs.Json.Str s) ]
  | Builtin n -> Obs.Json.Obj [ ("builtin", Obs.Json.Str n) ]

let budget_of_json j =
  match mem "budget" j with
  | None | Some Obs.Json.Null -> no_budget
  | Some b ->
      {
        timeout_s = opt_float "timeout_s" b;
        max_nodes = opt_int "max_nodes" b;
        max_steps = opt_int "max_steps" b;
      }

let budget_to_json b =
  Obs.Json.Obj
    (List.concat
       [
         (match b.timeout_s with
         | Some f -> [ ("timeout_s", Obs.Json.Float f) ]
         | None -> []);
         (match b.max_nodes with
         | Some n -> [ ("max_nodes", Obs.Json.Int n) ]
         | None -> []);
         (match b.max_steps with
         | Some n -> [ ("max_steps", Obs.Json.Int n) ]
         | None -> []);
       ])

let fuzz_of_json j =
  let spec = match mem "fuzz" j with Some s -> s | None -> Obs.Json.Obj [] in
  {
    f_iters = Option.value ~default:20 (opt_int "iters" spec);
    f_seed = Option.value ~default:0 (opt_int "seed" spec);
    f_state_limit = Option.value ~default:20_000 (opt_int "state_limit" spec);
    f_ctl_per_iter = Option.value ~default:3 (opt_int "ctl_per_iter" spec);
  }

let request_of_json j =
  (match j with Obs.Json.Obj _ -> () | _ -> bad "request must be an object");
  let op =
    match opt_str "op" j with
    | Some "check" -> Check
    | Some "reach" -> Reach
    | Some "fuzz" -> Fuzz (fuzz_of_json j)
    | Some "stats" -> Stats
    | Some "ping" -> Ping
    | Some "shutdown" -> Shutdown
    | Some other -> bad "unknown op %S" other
    | None -> bad "missing \"op\" member"
  in
  {
    r_id = (match mem "id" j with Some v -> v | None -> Obs.Json.Null);
    r_op = op;
    r_design =
      (match mem "design" j with
      | None | Some Obs.Json.Null -> None
      | Some d -> Some (design_of_json d));
    r_pif = opt_str "pif" j;
    r_budget = budget_of_json j;
    r_jobs =
      (match opt_int "jobs" j with
      | Some n when n < 1 -> bad "\"jobs\" must be >= 1"
      | v -> v);
    r_kernel_jobs =
      (match opt_int "kernel_jobs" j with
      | Some n when n < 1 -> bad "\"kernel_jobs\" must be >= 1"
      | v -> v);
    r_tr =
      (match opt_str "tr" j with
      | None -> None
      | Some s -> (
          match Hsis_fsm.Trans.strategy_of_name s with
          | Some _ as v -> v
          | None -> bad "\"tr\" must be one of \"mono\", \"part\", \"iso\""));
    r_fail_fast = opt_bool "fail_fast" j;
    r_witnesses = opt_bool "witnesses" j;
    r_stats = opt_bool "stats" j;
  }

let parse_request line =
  let j =
    try Obs.Json.parse line
    with Obs.Json.Parse_error m -> bad "invalid JSON: %s" m
  in
  request_of_json j

let request_to_json r =
  Obs.Json.Obj
    (List.concat
       [
         (match r.r_id with Obs.Json.Null -> [] | v -> [ ("id", v) ]);
         [ ("op", Obs.Json.Str (op_name r.r_op)) ];
         (match r.r_design with
         | Some d -> [ ("design", design_to_json d) ]
         | None -> []);
         (match r.r_pif with
         | Some p -> [ ("pif", Obs.Json.Str p) ]
         | None -> []);
         (if budget_is_none r.r_budget then []
          else [ ("budget", budget_to_json r.r_budget) ]);
         (match r.r_jobs with
         | Some n -> [ ("jobs", Obs.Json.Int n) ]
         | None -> []);
         (match r.r_kernel_jobs with
         | Some n -> [ ("kernel_jobs", Obs.Json.Int n) ]
         | None -> []);
         (match r.r_tr with
         | Some s ->
             [ ("tr", Obs.Json.Str (Hsis_fsm.Trans.strategy_name s)) ]
         | None -> []);
         (if r.r_fail_fast then [ ("fail_fast", Obs.Json.Bool true) ] else []);
         (if r.r_witnesses then [ ("witnesses", Obs.Json.Bool true) ] else []);
         (if r.r_stats then [ ("stats", Obs.Json.Bool true) ] else []);
         (match r.r_op with
         | Fuzz f ->
             [
               ( "fuzz",
                 Obs.Json.Obj
                   [
                     ("iters", Obs.Json.Int f.f_iters);
                     ("seed", Obs.Json.Int f.f_seed);
                     ("state_limit", Obs.Json.Int f.f_state_limit);
                     ("ctl_per_iter", Obs.Json.Int f.f_ctl_per_iter);
                   ] );
             ]
         | _ -> []);
       ])

type error_kind = Parse_error | Request_error | Job_error

let error_kind_name = function
  | Parse_error -> "parse"
  | Request_error -> "request"
  | Job_error -> "job"

type response = {
  p_id : Obs.Json.t;
  p_op : string;
  p_status : [ `Ok | `Error of error_kind * string ];
  p_exit_code : int;
  p_elapsed : float;
  p_cache : Obs.Json.t;
  p_result : Obs.Json.t option;
  p_obs : Obs.snapshot option;
}

let response_to_json p =
  Obs.Json.Obj
    (List.concat
       [
         [
           ("schema", Obs.Json.Str schema_version);
           ("id", p.p_id);
           ("op", Obs.Json.Str p.p_op);
           ( "status",
             Obs.Json.Str
               (match p.p_status with `Ok -> "ok" | `Error _ -> "error") );
           ("exit_code", Obs.Json.Int p.p_exit_code);
           ("elapsed_s", Obs.Json.Float p.p_elapsed);
           ("cache", p.p_cache);
         ];
         (match p.p_result with Some r -> [ ("result", r) ] | None -> []);
         (match p.p_status with
         | `Ok -> []
         | `Error (kind, message) ->
             [
               ( "error",
                 Obs.Json.Obj
                   [
                     ("kind", Obs.Json.Str (error_kind_name kind));
                     ("message", Obs.Json.Str message);
                   ] );
             ]);
         (match p.p_obs with
         | Some snap -> [ ("obs", Obs.to_json snap) ]
         | None -> []);
       ])

let response_of_json j =
  let str name = Option.value ~default:"" (opt_str name j) in
  let status =
    match str "status" with
    | "ok" -> `Ok
    | "error" ->
        let e = match mem "error" j with Some e -> e | None -> Obs.Json.Null in
        let kind =
          match opt_str "kind" e with
          | Some "parse" -> Parse_error
          | Some "request" -> Request_error
          | _ -> Job_error
        in
        `Error (kind, Option.value ~default:"" (opt_str "message" e))
    | other -> bad "unknown status %S" other
  in
  {
    p_id = (match mem "id" j with Some v -> v | None -> Obs.Json.Null);
    p_op = str "op";
    p_status = status;
    p_exit_code = Option.value ~default:0 (opt_int "exit_code" j);
    p_elapsed = Option.value ~default:0.0 (opt_float "elapsed_s" j);
    p_cache =
      (match mem "cache" j with Some c -> c | None -> Obs.Json.Obj []);
    p_result = mem "result" j;
    p_obs =
      (match mem "obs" j with
      | Some o -> Some (Obs.of_json o)
      | None -> None);
  }

let print_response p = Obs.Json.to_string (response_to_json p)
