open Hsis_obs
open Hsis_core
open Hsis_fsm

type entry = {
  key : string;  (** session hash + heuristic *)
  session : Hsis.Session.t;
  mutable stamp : int;  (** LRU clock value of the last use *)
}

type t = {
  max_entries : int;
  max_live_nodes : int;
  mutable entries : entry list;  (** unordered; small N *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  per_entry_hits : Obs.Tally.t;
  per_entry_evictions : Obs.Tally.t;
}

let create ?(max_entries = 8) ?(max_live_nodes = 2_000_000) () =
  {
    max_entries = max 1 max_entries;
    max_live_nodes = max 1 max_live_nodes;
    entries = [];
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    per_entry_hits = Obs.Tally.create ();
    per_entry_evictions = Obs.Tally.create ();
  }

let heuristic_name = function
  | Trans.Min_width -> "min-width"
  | Trans.Pair_clustering -> "pairs"
  | Trans.Naive -> "naive"

let key_of ~heuristic ~tr source =
  Hsis.Session.hash source ^ "/" ^ heuristic_name heuristic ^ "/"
  ^ Trans.strategy_name tr

let short_id s = String.sub (Hsis.Session.id s) 0 8

let next_tick t =
  t.tick <- t.tick + 1;
  t.tick

(* A cached shared-work snapshot ([Session.snapshot_bytes]) is heap the
   session holds beyond its BDD arena; charge it against the node budget
   at the wire rate of one node per 4 boxed-int record (32 bytes). *)
let snapshot_node_equiv s = Hsis.Session.snapshot_bytes s / 32

let weight e =
  Hsis.Session.live_nodes e.session + snapshot_node_equiv e.session

let total_live t =
  List.fold_left (fun acc e -> acc + Hsis.Session.live_nodes e.session) 0
    t.entries

let total_snapshot_bytes t =
  List.fold_left
    (fun acc e -> acc + Hsis.Session.snapshot_bytes e.session)
    0 t.entries

let total_weight t = List.fold_left (fun acc e -> acc + weight e) 0 t.entries

(* Evict least-recently-used entries until both budgets hold.  [keep] (the
   session just inserted or just used) is exempt: the cache always admits
   the working design even when it alone exceeds the node budget —
   matching Limits-style budgets, which interrupt work beyond the quota
   rather than refusing to start it. *)
let enforce ?keep t =
  let is_kept e =
    match keep with Some s -> e.session == s | None -> false
  in
  let over () =
    List.length t.entries > t.max_entries || total_weight t > t.max_live_nodes
  in
  let evictable () =
    List.exists (fun e -> not (is_kept e)) t.entries
  in
  while over () && evictable () do
    let victim =
      List.fold_left
        (fun acc e ->
          if is_kept e then acc
          else
            match acc with
            | None -> Some e
            | Some v -> if e.stamp < v.stamp then Some e else acc)
        None t.entries
    in
    match victim with
    | None -> ()
    | Some v ->
        t.entries <- List.filter (fun e -> e != v) t.entries;
        t.evictions <- t.evictions + 1;
        Obs.Tally.incr t.per_entry_evictions (short_id v.session);
        Hsis.Session.close v.session
  done

let find_or_open t ~heuristic ~tr source =
  let key = key_of ~heuristic ~tr source in
  match List.find_opt (fun e -> e.key = key) t.entries with
  | Some e ->
      e.stamp <- next_tick t;
      t.hits <- t.hits + 1;
      Hsis.Session.touch e.session;
      Obs.Tally.incr t.per_entry_hits (short_id e.session);
      (e.session, true)
  | None ->
      let session = Hsis.Session.open_ ~heuristic ~tr source in
      t.misses <- t.misses + 1;
      t.entries <- { key; session; stamp = next_tick t } :: t.entries;
      enforce ~keep:session t;
      (session, false)

type stats = {
  entries : int;
  live_nodes : int;
  snapshot_bytes : int;
  hits : int;
  misses : int;
  evictions : int;
}

let stats (t : t) =
  {
    entries = List.length t.entries;
    live_nodes = total_live t;
    snapshot_bytes = total_snapshot_bytes t;
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
  }

let entry_hits t = Obs.Tally.to_list t.per_entry_hits

let by_recency (t : t) =
  List.sort (fun a b -> compare b.stamp a.stamp) t.entries

let ids t = List.map (fun e -> Hsis.Session.id e.session) (by_recency t)

let clear (t : t) =
  List.iter (fun e -> Hsis.Session.close e.session) t.entries;
  t.entries <- []

let to_json t =
  let s = stats t in
  Obs.Json.Obj
    [
      ("entries", Obs.Json.Int s.entries);
      ("live_nodes", Obs.Json.Int s.live_nodes);
      ("snapshot_bytes", Obs.Json.Int s.snapshot_bytes);
      ("max_entries", Obs.Json.Int t.max_entries);
      ("max_live_nodes", Obs.Json.Int t.max_live_nodes);
      ("hits", Obs.Json.Int s.hits);
      ("misses", Obs.Json.Int s.misses);
      ("evictions", Obs.Json.Int s.evictions);
      ("per_entry_hits", Obs.Tally.to_json t.per_entry_hits);
      ("per_entry_evictions", Obs.Tally.to_json t.per_entry_evictions);
      ( "sessions",
        Obs.Json.List
          (List.map
             (fun e ->
               Obs.Json.Obj
                 [
                   ("id", Obs.Json.Str (Hsis.Session.id e.session));
                   ("hits", Obs.Json.Int (Hsis.Session.hits e.session));
                   ( "live_nodes",
                     Obs.Json.Int (Hsis.Session.live_nodes e.session) );
                   ( "snapshot_bytes",
                     Obs.Json.Int (Hsis.Session.snapshot_bytes e.session) );
                 ])
             (by_recency t)) );
    ]
