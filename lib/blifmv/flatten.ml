exception Error of string

let err fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type inst = {
  i_master : string;
  i_path : string;
  i_tables : int * int;
  i_latches : int * int;
}

type provenance = inst list

(* Rename every signal of [model] through [rn] and accumulate its contents
   (minus subckts, which are expanded recursively).  Each expanded instance
   appends its whole subtree to the accumulated table/latch lists as one
   contiguous run; [prov] records those runs so relation construction can
   later recognize instances of the same master as renamed copies. *)
let rec expand ast ~stack ~prefix ~bind ~prov (model : Ast.model) acc =
  if List.mem model.Ast.m_name stack then
    err "recursive instantiation of model %s" model.Ast.m_name;
  let stack = model.Ast.m_name :: stack in
  let rn name =
    match Hashtbl.find_opt bind name with
    | Some actual -> actual
    | None -> prefix ^ name
  in
  let rn_entry = function
    | (Ast.Any | Ast.Val _ | Ast.Set _ | Ast.Not _) as e -> e
    | Ast.Eq x -> Ast.Eq (rn x)
  in
  let mvs =
    List.map
      (fun (d : Ast.var_decl) -> { d with Ast.v_names = List.map rn d.v_names })
      model.Ast.m_mvs
  in
  let tables =
    List.map
      (fun (t : Ast.table) ->
        {
          Ast.t_inputs = List.map rn t.t_inputs;
          t_outputs = List.map rn t.t_outputs;
          t_rows =
            List.map
              (fun (r : Ast.row) ->
                {
                  Ast.r_inputs = List.map rn_entry r.r_inputs;
                  r_outputs = List.map rn_entry r.r_outputs;
                })
              t.t_rows;
          t_default = Option.map (List.map rn_entry) t.t_default;
        })
      model.Ast.m_tables
  in
  let latches =
    List.map
      (fun (l : Ast.latch) ->
        { l with Ast.l_input = rn l.l_input; l_output = rn l.l_output })
      model.Ast.m_latches
  in
  let delays =
    List.map (fun (out, dmin, dmax) -> (rn out, dmin, dmax)) model.Ast.m_delays
  in
  let acc =
    let mvs0, tables0, latches0, delays0 = acc in
    (mvs0 @ mvs, tables0 @ tables, latches0 @ latches, delays0 @ delays)
  in
  List.fold_left
    (fun acc (s : Ast.subckt) ->
      let sub =
        match Ast.find_model ast s.Ast.s_model with
        | Some m -> m
        | None -> err "unknown model %s" s.Ast.s_model
      in
      let ports = sub.Ast.m_inputs @ sub.Ast.m_outputs in
      let bind' = Hashtbl.create 16 in
      List.iter
        (fun (formal, actual) ->
          if not (List.mem formal ports) then
            err "instance %s: %s is not a port of %s" s.Ast.s_inst formal
              s.Ast.s_model;
          if Hashtbl.mem bind' formal then
            err "instance %s: duplicate connection for %s" s.Ast.s_inst formal;
          Hashtbl.add bind' formal (rn actual))
        s.Ast.s_conns;
      List.iter
        (fun p ->
          if not (Hashtbl.mem bind' p) then
            err "instance %s: port %s of %s left unconnected" s.Ast.s_inst p
              s.Ast.s_model)
        ports;
      let _, tables0, latches0, _ = acc in
      let t0 = List.length tables0 and l0 = List.length latches0 in
      let acc =
        expand ast ~stack ~prefix:(prefix ^ s.Ast.s_inst ^ "/") ~bind:bind'
          ~prov sub acc
      in
      let _, tables1, latches1, _ = acc in
      prov :=
        {
          i_master = s.Ast.s_model;
          i_path = prefix ^ s.Ast.s_inst ^ "/";
          i_tables = (t0, List.length tables1 - t0);
          i_latches = (l0, List.length latches1 - l0);
        }
        :: !prov;
      acc)
    acc model.Ast.m_subckts

let flatten_prov ?root (ast : Ast.t) =
  let root_name = Option.value ~default:ast.Ast.root root in
  let model =
    match Ast.find_model ast root_name with
    | Some m -> m
    | None -> err "unknown root model %s" root_name
  in
  let prov = ref [] in
  let mvs, tables, latches, delays =
    expand ast ~stack:[] ~prefix:"" ~bind:(Hashtbl.create 1) ~prov model
      ([], [], [], [])
  in
  let provenance =
    (* flat position order; a parent (longer run) sorts before a nested
       child starting at the same index *)
    List.sort
      (fun a b ->
        let c = compare (fst a.i_tables) (fst b.i_tables) in
        if c <> 0 then c
        else
          let c = compare (fst a.i_latches) (fst b.i_latches) in
          if c <> 0 then c else compare (snd b.i_tables) (snd a.i_tables))
      !prov
  in
  ( {
      Ast.m_name = model.Ast.m_name;
      m_inputs = model.Ast.m_inputs;
      m_outputs = model.Ast.m_outputs;
      m_mvs = mvs;
      m_tables = tables;
      m_latches = latches;
      m_subckts = [];
      m_delays = delays;
    },
    provenance )

let flatten ?root ast = fst (flatten_prov ?root ast)
