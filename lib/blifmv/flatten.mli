(** Hierarchy elaboration: instantiate every [.subckt] recursively, producing
    a single flat model whose internal signals are prefixed by instance path
    (e.g. [cpu1/alu/carry]). *)

exception Error of string

type inst = {
  i_master : string;  (** master model name *)
  i_path : string;  (** flat instance prefix, e.g. ["cpu1/alu/"] *)
  i_tables : int * int;
      (** [(start, len)] range of the flat model's table list contributed
          by this instance (including any nested sub-instances) *)
  i_latches : int * int;  (** same, into the flat latch list *)
}
(** Provenance of one [.subckt] instance: because {!flatten} expands an
    instance subtree depth-first into contiguous runs of the accumulated
    table and latch lists, an instance's whole flat contribution is the
    pair of ranges recorded here.  Two instances of the same master
    contribute structurally identical runs that differ only by a signal
    renaming — the replication that isomorphism-sharing transition-relation
    construction exploits. *)

type provenance = inst list
(** Every instance at every depth, in flat (pre-order) position order:
    an instance listed earlier has both its ranges entirely before a
    later disjoint instance's; a nested instance's ranges are contained
    in its parent's. *)

val flatten : ?root:string -> Ast.t -> Ast.model
(** Raises {!Error} on unknown models, recursive instantiation, unbound or
    duplicate connections. *)

val flatten_prov : ?root:string -> Ast.t -> Ast.model * provenance
(** {!flatten} plus the instance provenance of the result. *)
